// Tests for the streaming localization pipeline (src/pipeline): ingest
// backpressure accounting, deterministic sharding, epoch policies, and
// equivalence of the single-shard pipeline with the synchronous
// Collector::drain_into_input + FlockLocalizer::localize path.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <unordered_map>

#include "common/rng.h"
#include "core/flock_localizer.h"
#include "flowsim/scenario.h"
#include "flowsim/simulate.h"
#include "pipeline/pipeline.h"
#include "telemetry/agent.h"
#include "telemetry/collector.h"
#include "topology/topology.h"

namespace flock {
namespace {

// --- ingest queue ------------------------------------------------------------

TEST(IngestQueue, FullQueueDropsAreCountedNotSilentlyLost) {
  BoundedQueue<int> q(4);
  int accepted = 0;
  for (int i = 0; i < 10; ++i) accepted += q.try_push(i) ? 1 : 0;
  EXPECT_EQ(accepted, 4);
  const auto s = q.stats();
  EXPECT_EQ(s.pushed, 4u);
  EXPECT_EQ(s.dropped, 6u);
  EXPECT_EQ(s.pushed + s.dropped, 10u);  // conservation at the edge

  std::vector<int> out;
  EXPECT_EQ(q.pop_batch(out, 16), 4u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
  q.close();
  out.clear();
  EXPECT_EQ(q.pop_batch(out, 16), 0u);
  EXPECT_FALSE(q.try_push(99));
  // A push after close is shutdown teardown, not backpressure loss: it lands
  // in rejected_closed, never conflated with the full-queue drops above.
  EXPECT_EQ(q.stats().dropped, 6u);
  EXPECT_EQ(q.stats().rejected_closed, 1u);
  EXPECT_EQ(q.stats().pushed + q.stats().dropped + q.stats().rejected_closed, 11u);
}

TEST(IngestQueue, CloseDuringBlockedPushesCountsRejectionsNotDrops) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.try_push(0));
  std::thread single([&] { EXPECT_FALSE(q.push_wait(1)); });
  std::thread batch([&] { EXPECT_FALSE(q.push_many({2, 3, 4})); });
  // Wait until both producers are blocked on the full queue, then close.
  while (q.stats().pushed < 1) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  single.join();
  batch.join();
  const auto s = q.stats();
  EXPECT_EQ(s.pushed, 1u);
  EXPECT_EQ(s.dropped, 0u);  // nothing was a backpressure drop
  EXPECT_EQ(s.rejected_closed, 4u);
  EXPECT_EQ(s.pushed + s.dropped + s.rejected_closed, 5u);  // conservation
}

// The multi-receiver front-end version of the close race: several threads
// offering through every push edge (try_push, push_wait, push_many) while
// close() lands at an arbitrary moment. Conservation must hold exactly —
// every attempted item ends up in exactly one of pushed / dropped /
// rejected_closed — and the TSan CI leg checks the accounting is race-free.
TEST(IngestQueue, ConcurrentOffersRacingCloseConserveEveryItem) {
  for (int round = 0; round < 20; ++round) {
    BoundedQueue<int> q(8);
    constexpr int kThreads = 4;
    constexpr int kPerThread = 64;
    std::atomic<std::uint64_t> attempted{0};
    std::vector<std::thread> producers;
    for (int t = 0; t < kThreads; ++t) {
      producers.emplace_back([&, t] {
        for (int i = 0; i < kPerThread;) {
          switch ((t + i) % 3) {
            case 0:
              q.try_push(i);
              attempted.fetch_add(1);
              ++i;
              break;
            case 1:
              q.push_wait(i);
              attempted.fetch_add(1);
              ++i;
              break;
            default: {
              const int n = std::min(3, kPerThread - i);
              std::vector<int> batch(static_cast<std::size_t>(n), i);
              q.push_many(std::move(batch));
              attempted.fetch_add(static_cast<std::uint64_t>(n));
              i += n;
              break;
            }
          }
        }
      });
    }
    // A consumer drains so push_wait callers make progress, then the queue
    // closes mid-stream; blocked waiters must unblock into rejected_closed.
    std::thread consumer([&] {
      std::vector<int> out;
      for (int polls = 0; polls < 5 + round; ++polls) {
        out.clear();
        q.pop_batch_for(out, 16, std::chrono::milliseconds(1));
      }
      q.close();
      // Keep draining after close so anything pushed pre-close is consumed.
      out.clear();
      while (q.pop_batch(out, 64) > 0) out.clear();
    });
    for (auto& t : producers) t.join();
    consumer.join();
    const auto s = q.stats();
    EXPECT_EQ(s.pushed + s.dropped + s.rejected_closed, attempted.load())
        << "round=" << round;
  }
}

TEST(IngestQueue, PushWaitBlocksInsteadOfDropping) {
  BoundedQueue<int> q(2);
  ASSERT_TRUE(q.try_push(1));
  ASSERT_TRUE(q.try_push(2));
  std::thread producer([&] { q.push_wait(3); });  // blocks until a pop frees space
  std::vector<int> out;
  while (q.stats().pushed < 3) {
    out.clear();
    if (q.pop_batch(out, 1) == 0) break;
  }
  producer.join();
  EXPECT_EQ(q.stats().pushed, 3u);
  EXPECT_EQ(q.stats().dropped, 0u);
}

// --- fixture: simulated trace exported as per-agent IPFIX datagrams ----------

struct StreamFixture {
  Topology topo = make_fat_tree(4);
  EcmpRouter router{topo};
  Trace trace;
  // Datagrams in a fixed feed order (per-host agents, hosts in id order).
  std::vector<IngestDatagram> datagrams;

  explicit StreamFixture(std::uint64_t seed = 42, std::int64_t flows = 600,
                         std::uint32_t export_time = 1000, bool probes = true) {
    Rng rng(seed);
    GroundTruth truth =
        make_silent_link_drops(topo, 1, DropRateConfig{1e-4, 5e-3, 1e-2}, rng);
    TrafficConfig traffic;
    traffic.num_app_flows = flows;
    ProbeConfig probe_config;
    probe_config.enabled = probes;
    trace = simulate(topo, router, std::move(truth), traffic, probe_config, rng);

    std::unordered_map<NodeId, Agent> agents;
    for (NodeId h : topo.hosts()) {
      AgentConfig cfg;
      cfg.observation_domain = static_cast<std::uint32_t>(h);
      agents.emplace(h, Agent(topo, cfg));
    }
    for (const SimFlow& f : trace.flows) {
      SimFlow passive = f;
      if (f.kind == SimFlowKind::kApp) passive.taken_path = -1;
      agents.at(f.src_host).observe(passive);
    }
    for (NodeId h : topo.hosts()) {
      for (auto& msg : agents.at(h).flush(export_time)) {
        datagrams.push_back({node_to_addr(h), std::move(msg)});
      }
    }
  }
};

FlockOptions test_flock_options() {
  FlockOptions options;
  options.params.p_g = 1e-4;
  options.params.p_b = 6e-3;
  options.params.rho = 1e-3;
  return options;
}

// --- single-shard equivalence with the synchronous path ----------------------

TEST(Pipeline, SingleShardMatchesSynchronousPath) {
  StreamFixture fx;

  // Synchronous reference: same datagrams, same order, same router.
  Collector collector(fx.topo, fx.router);
  for (const IngestDatagram& d : fx.datagrams) ASSERT_TRUE(collector.ingest(d.bytes));
  const InferenceInput sync_input = collector.drain_into_input();
  const LocalizationResult sync_result =
      FlockLocalizer(test_flock_options()).localize(sync_input);

  PipelineConfig config;
  config.num_shards = 1;
  config.localizer = test_flock_options();
  StreamingPipeline pipeline(fx.topo, fx.router, config);
  for (const IngestDatagram& d : fx.datagrams) pipeline.offer_wait(d);
  pipeline.close_epoch();
  pipeline.stop();

  const auto epochs = pipeline.results().completed();
  ASSERT_EQ(epochs.size(), 1u);
  EXPECT_EQ(epochs[0].flows, sync_input.num_flows());
  EXPECT_EQ(epochs[0].unresolved, collector.unresolved_records());

  std::vector<ComponentId> expected = sync_result.predicted;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(epochs[0].predicted, expected);
  EXPECT_DOUBLE_EQ(epochs[0].shard_score_sum, sync_result.log_likelihood);
  EXPECT_FALSE(epochs[0].predicted.empty());  // the injected failure is found
}

// --- shard partition determinism ---------------------------------------------

TEST(Pipeline, ShardPartitionIsDeterministicUnderFixedSeed) {
  StreamFixture fx(/*seed=*/7);
  std::vector<std::uint64_t> per_shard_counts[2];
  for (int run = 0; run < 2; ++run) {
    PipelineConfig config;
    config.num_shards = 4;
    config.localizer = test_flock_options();
    StreamingPipeline pipeline(fx.topo, fx.router, config);
    for (const IngestDatagram& d : fx.datagrams) pipeline.offer_wait(d);
    pipeline.close_epoch();
    pipeline.stop();
    for (std::int32_t s = 0; s < 4; ++s) {
      per_shard_counts[run].push_back(pipeline.shards().shard_datagrams(s));
    }
    // The partition function itself is a pure function of the source.
    for (const IngestDatagram& d : fx.datagrams) {
      EXPECT_EQ(pipeline.shards().shard_of(d.source_addr),
                pipeline.shards().shard_of(d.source_addr));
    }
  }
  EXPECT_EQ(per_shard_counts[0], per_shard_counts[1]);
  std::uint64_t total = 0;
  int used_shards = 0;
  for (std::uint64_t c : per_shard_counts[0]) {
    total += c;
    used_shards += c > 0 ? 1 : 0;
  }
  EXPECT_EQ(total, fx.datagrams.size());
  EXPECT_GT(used_shards, 1);  // a fat-tree(4)'s racks spread across shards
}

// --- record conservation end-to-end ------------------------------------------

TEST(Pipeline, AcceptedRecordsAllLandInEpochs) {
  StreamFixture fx;
  PipelineConfig config;
  config.num_shards = 3;
  config.localizer = test_flock_options();
  config.epoch.record_limit = 200;  // several epochs over ~600+ records
  StreamingPipeline pipeline(fx.topo, fx.router, config);
  for (const IngestDatagram& d : fx.datagrams) pipeline.offer_wait(d);
  pipeline.stop();

  const auto stats = pipeline.stats();
  EXPECT_EQ(stats.offered, fx.datagrams.size());
  EXPECT_EQ(stats.offered, stats.accepted + stats.dropped);
  EXPECT_EQ(stats.dropped, 0u);  // offer_wait never drops
  EXPECT_EQ(stats.dispatched, stats.accepted);
  EXPECT_EQ(stats.malformed_messages, 0u);
  EXPECT_GE(stats.epochs_closed, 2u);

  std::uint64_t flows = 0, unresolved = 0, stolen = 0;
  const auto epochs = pipeline.results().completed();
  for (const auto& e : epochs) {
    flows += e.flows;
    unresolved += e.unresolved;
    stolen += e.stolen_batches;
    // The record-count cut is exact at dispatch time: every epoch but the
    // final flush carries at least the configured record budget.
    if (e.epoch + 1 < epochs.size()) {
      EXPECT_GE(e.flows + e.unresolved, config.epoch.record_limit);
    }
  }
  // Every decoded record is either joined into some epoch's inference input
  // or counted unresolved — nothing vanishes between stages. Work stealing
  // (on by default) must keep the books balanced too.
  EXPECT_EQ(flows + unresolved, stats.records_decoded);
  EXPECT_EQ(stolen, stats.batches_stolen);
  EXPECT_EQ(pipeline.results().completed_epochs(), stats.epochs_closed);
}

TEST(Pipeline, OffersAfterStopAreRejectionsNotBackpressureDrops) {
  StreamFixture fx(/*seed=*/5, /*flows=*/100);
  PipelineConfig config;
  config.num_shards = 2;
  config.localizer = test_flock_options();
  StreamingPipeline pipeline(fx.topo, fx.router, config);
  pipeline.offer_wait(fx.datagrams.front());
  pipeline.stop();
  EXPECT_FALSE(pipeline.offer(fx.datagrams.back()));
  // A close_epoch() against the stopped pipeline pushes an in-band boundary
  // token that the closed queue rejects — that is not a datagram and must
  // not leak into the ingest accounting (or underflow `accepted`).
  pipeline.close_epoch();
  const auto stats = pipeline.stats();
  EXPECT_EQ(stats.offered, 2u);
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.dropped, 0u);  // the queue was closed, not full
  EXPECT_EQ(stats.rejected_closed, 1u);
  EXPECT_EQ(stats.offered, stats.accepted + stats.dropped + stats.rejected_closed);
}

// --- virtual-time epochs ------------------------------------------------------

TEST(Pipeline, VirtualTimeEpochsAreDeterministic) {
  // Three export rounds 10s apart; a 10s epoch closes at each boundary.
  Topology topo = make_fat_tree(4);
  EcmpRouter router(topo);
  std::vector<IngestDatagram> datagrams;
  for (std::uint32_t round = 0; round < 3; ++round) {
    // Passive-only traffic: the datagrams are joined against the outer
    // router here, so they must not carry fixture-router path-set ids.
    StreamFixture fx(/*seed=*/100 + round, /*flows=*/150,
                     /*export_time=*/1000 + round * 10, /*probes=*/false);
    for (auto& d : fx.datagrams) datagrams.push_back(std::move(d));
  }

  std::vector<std::uint64_t> epoch_flows[2];
  for (int run = 0; run < 2; ++run) {
    PipelineConfig config;
    config.num_shards = 2;
    config.localizer = test_flock_options();
    config.epoch.virtual_seconds = 10;
    StreamingPipeline pipeline(topo, router, config);
    for (const IngestDatagram& d : datagrams) pipeline.offer_wait(d);
    pipeline.stop();
    const auto epochs = pipeline.results().completed();
    ASSERT_EQ(epochs.size(), 3u);  // one per export round; gap never splits
    for (const auto& e : epochs) epoch_flows[run].push_back(e.flows);
  }
  EXPECT_EQ(epoch_flows[0], epoch_flows[1]);
}

TEST(Pipeline, VirtualTimeSurvivesExportClockWrap) {
  // Two export rounds 10 virtual seconds apart, straddling the uint32
  // export-time wrap: serial comparison must see exactly one boundary, not
  // close an epoch on every post-wrap datagram.
  Topology topo = make_fat_tree(4);
  EcmpRouter router(topo);
  std::vector<IngestDatagram> datagrams;
  const std::uint32_t times[2] = {0xFFFFFFFBu, 5u};
  for (int round = 0; round < 2; ++round) {
    StreamFixture fx(/*seed=*/200 + static_cast<std::uint64_t>(round), /*flows=*/150,
                     times[round], /*probes=*/false);
    for (auto& d : fx.datagrams) datagrams.push_back(std::move(d));
  }
  PipelineConfig config;
  config.num_shards = 2;
  config.localizer = test_flock_options();
  config.epoch.virtual_seconds = 10;
  StreamingPipeline pipeline(topo, router, config);
  for (const IngestDatagram& d : datagrams) pipeline.offer_wait(d);
  pipeline.stop();
  const auto epochs = pipeline.results().completed();
  ASSERT_EQ(epochs.size(), 2u);
  EXPECT_GT(epochs[0].flows, 0u);
  EXPECT_GT(epochs[1].flows, 0u);
}

// --- merged diagnosis across shards ------------------------------------------

TEST(Pipeline, EquivalenceClassDedupCollapsesIndistinguishableComponents) {
  StreamFixture fx(/*seed=*/42, /*flows=*/2000);
  PipelineConfig config;
  config.num_shards = 4;
  config.localizer = test_flock_options();
  // Report the whole ambiguity class per shard, then dedup at the merge.
  config.localizer.equivalence_epsilon = 1e-6;
  config.merge_equivalence_classes = true;
  StreamingPipeline pipeline(fx.topo, fx.router, config);
  for (const IngestDatagram& d : fx.datagrams) pipeline.offer_wait(d);
  pipeline.close_epoch();
  pipeline.stop();

  const auto epochs = pipeline.results().completed();
  ASSERT_EQ(epochs.size(), 1u);
  const auto& merged = epochs[0];

  // No two merged components may lie in the same ECMP equivalence class.
  const auto classes = ecmp_equivalence_classes(fx.router);
  std::unordered_map<ComponentId, int> class_of;
  for (std::size_t i = 0; i < classes.size(); ++i) {
    for (ComponentId c : classes[i]) class_of[c] = static_cast<int>(i);
  }
  std::unordered_map<int, int> hits;
  for (ComponentId c : merged.predicted) {
    auto it = class_of.find(c);
    if (it != class_of.end()) {
      EXPECT_EQ(++hits[it->second], 1) << "class reported twice";
    }
  }
  // Union really is deduped.
  auto sorted = merged.predicted;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end());
  EXPECT_EQ(merged.per_shard_predicted.size(), 4u);
}

// --- temporal tracker: default-off prior is byte-identical --------------------

// An explicit all-zero carryover vector must not perturb a single float op:
// the localizer's output (hypothesis AND scores, compared exactly) matches
// the prior-less overload bit for bit.
TEST(Pipeline, ZeroCarryoverPriorIsByteIdenticalAtTheLocalizer) {
  StreamFixture fx(/*seed=*/42, /*flows=*/800);
  Collector collector(fx.topo, fx.router);
  for (const IngestDatagram& d : fx.datagrams) ASSERT_TRUE(collector.ingest(d.bytes));
  const InferenceInput input = collector.drain_into_input();

  const FlockLocalizer localizer(test_flock_options());
  const LocalizationResult plain = localizer.localize(input);
  const std::vector<double> zeros(
      static_cast<std::size_t>(fx.topo.num_components()), 0.0);
  const LocalizationResult with_zeros = localizer.localize(input, zeros);
  const LocalizationResult with_empty = localizer.localize(input, {});

  EXPECT_FALSE(plain.predicted.empty());
  EXPECT_EQ(with_zeros.predicted, plain.predicted);
  EXPECT_EQ(with_empty.predicted, plain.predicted);
  // Exact equality, not NEAR: weight 0 must take the identical code path.
  EXPECT_EQ(with_zeros.log_likelihood, plain.log_likelihood);
  EXPECT_EQ(with_empty.log_likelihood, plain.log_likelihood);
  EXPECT_EQ(with_zeros.hypotheses_scanned, plain.hypotheses_scanned);
}

// Multi-epoch pipeline with the tracker attached (default prior weight 0)
// against the synchronous per-epoch reference path: per-epoch output is
// byte-identical to a pipeline that never had a temporal layer, while the
// tracker still observed every epoch.
TEST(Pipeline, TrackerWithZeroWeightKeepsEpochOutputByteIdentical) {
  Topology topo = make_fat_tree(4);
  EcmpRouter router(topo);
  std::vector<std::vector<IngestDatagram>> epochs_in;
  for (std::uint64_t round = 0; round < 3; ++round) {
    StreamFixture fx(/*seed=*/300 + round, /*flows=*/400, /*export_time=*/1000,
                     /*probes=*/false);
    epochs_in.push_back(std::move(fx.datagrams));
  }

  // Synchronous per-epoch reference: one Collector drain + localize per burst
  // (the PR 4 behavior, no temporal layer anywhere).
  const FlockLocalizer reference_localizer(test_flock_options());
  std::vector<LocalizationResult> reference;
  for (const auto& burst : epochs_in) {
    Collector collector(topo, router);
    for (const IngestDatagram& d : burst) ASSERT_TRUE(collector.ingest(d.bytes));
    reference.push_back(reference_localizer.localize(collector.drain_into_input()));
  }

  PipelineConfig config;
  config.num_shards = 1;
  config.localizer = test_flock_options();
  ASSERT_EQ(config.temporal.prior_weight, 0.0);  // the default under test
  StreamingPipeline pipeline(topo, router, config);
  for (const auto& burst : epochs_in) {
    for (const IngestDatagram& d : burst) pipeline.offer_wait(d);
    pipeline.close_epoch();
  }
  pipeline.stop();

  const auto epochs = pipeline.results().completed();
  ASSERT_EQ(epochs.size(), epochs_in.size());
  for (std::size_t e = 0; e < epochs.size(); ++e) {
    std::vector<ComponentId> expected = reference[e].predicted;
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(epochs[e].predicted, expected) << "epoch " << e;
    EXPECT_EQ(epochs[e].shard_score_sum, reference[e].log_likelihood) << "epoch " << e;
  }
  // The tracker ran alongside without touching the results.
  EXPECT_EQ(pipeline.tracker().stats().epochs_observed, epochs.size());
}

}  // namespace
}  // namespace flock
