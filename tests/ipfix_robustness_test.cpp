// Robustness of the IPFIX wire parsers against truncated and garbage
// datagrams — the foundation of the UDP front-end's quarantine path
// (net/ingest_server). The sweep tests are deterministic byte mutations of
// valid encoder output: every peek/decode call must return an error status
// (or a value) without ever reading past the buffer — the sanitizer CI legs
// run this file under ASan+UBSan to enforce exactly that.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "telemetry/flow_record.h"
#include "telemetry/ipfix.h"

namespace flock {
namespace {

FlowRecord sample_record(std::uint32_t i) {
  FlowRecord r;
  r.src_addr = node_to_addr(static_cast<NodeId>(i));
  r.dst_addr = node_to_addr(static_cast<NodeId>(i + 1));
  r.src_port = static_cast<std::uint16_t>(40000 + i);
  r.dst_port = 443;
  r.packets = 1000 + i;
  r.retransmissions = i % 7;
  r.mean_rtt_us = 250 + i;
  r.path_set = static_cast<std::int32_t>(i % 5) - 1;
  r.taken_path = r.path_set >= 0 ? static_cast<std::int32_t>(i % 3) : -1;
  return r;
}

std::vector<std::uint8_t> valid_message(std::size_t records = 8) {
  IpfixEncoder enc(IpfixEncoderOptions{});
  std::vector<FlowRecord> batch;
  for (std::uint32_t i = 0; i < records; ++i) batch.push_back(sample_record(i));
  auto messages = enc.encode(batch, 1700000000);
  return messages.front();
}

// --- header validation -------------------------------------------------------

TEST(IpfixHeader, ValidMessagePeeksAllFields) {
  const auto msg = valid_message();
  IpfixHeader header;
  ASSERT_EQ(peek_header(msg.data(), msg.size(), &header), IpfixHeaderStatus::kOk);
  EXPECT_EQ(header.length, msg.size());
  EXPECT_EQ(header.export_time, 1700000000u);
  EXPECT_EQ(header.observation_domain, 1u);
  EXPECT_EQ(header.sequence, 0u);
}

TEST(IpfixHeader, EveryTruncationLengthIsClassified) {
  const auto msg = valid_message();
  for (std::size_t len = 0; len <= msg.size(); ++len) {
    const IpfixHeaderStatus status = peek_header(msg.data(), len);
    if (len < kIpfixHeaderBytes) {
      EXPECT_EQ(status, IpfixHeaderStatus::kShortHeader) << "len=" << len;
    } else if (len != msg.size()) {
      // Header parses but its length field disagrees with the datagram.
      EXPECT_EQ(status, IpfixHeaderStatus::kLengthMismatch) << "len=" << len;
    } else {
      EXPECT_EQ(status, IpfixHeaderStatus::kOk);
    }
  }
  EXPECT_EQ(peek_header(nullptr, 0), IpfixHeaderStatus::kShortHeader);
}

TEST(IpfixHeader, BadVersionAndTrailingGarbageAreRejected) {
  auto msg = valid_message();
  auto wrong_version = msg;
  wrong_version[0] = 0;
  wrong_version[1] = 9;  // NetFlow v9, not IPFIX
  EXPECT_EQ(peek_header(wrong_version.data(), wrong_version.size()),
            IpfixHeaderStatus::kBadVersion);

  auto padded = msg;
  padded.push_back(0xAA);  // datagram longer than the message claims
  EXPECT_EQ(padded.size(), static_cast<std::size_t>(msg.size() + 1));
  EXPECT_EQ(peek_header(padded.data(), padded.size()), IpfixHeaderStatus::kLengthMismatch);

  EXPECT_STREQ(to_string(IpfixHeaderStatus::kShortHeader), "short_header");
  EXPECT_STREQ(to_string(IpfixHeaderStatus::kBadVersion), "bad_version");
  EXPECT_STREQ(to_string(IpfixHeaderStatus::kLengthMismatch), "length_mismatch");
}

// --- peek helpers under mutation ---------------------------------------------

// Every single-byte mutation of a valid message, at every offset and with a
// deterministic set of replacement values: the peeks must return nullopt or
// a value, never crash or overread (ASan is the judge on the CI legs).
TEST(IpfixMutationSweep, PeeksSurviveEverySingleByteCorruption) {
  const auto msg = valid_message();
  const std::uint8_t replacements[] = {0x00, 0x01, 0x7F, 0x80, 0xFE, 0xFF};
  for (std::size_t i = 0; i < msg.size(); ++i) {
    for (const std::uint8_t value : replacements) {
      auto mutated = msg;
      mutated[i] = value;
      (void)peek_header(mutated.data(), mutated.size());
      (void)peek_export_time(mutated);
      (void)peek_record_count(mutated);
    }
  }
}

// Same sweep against every truncation point (prefixes) and against prefixes
// with a mutated final byte — the shapes socket truncation actually produces.
TEST(IpfixMutationSweep, PeeksSurviveEveryTruncation) {
  const auto msg = valid_message();
  for (std::size_t len = 0; len <= msg.size(); ++len) {
    std::vector<std::uint8_t> prefix(msg.begin(), msg.begin() + static_cast<long>(len));
    (void)peek_header(prefix.data(), prefix.size());
    (void)peek_export_time(prefix);
    (void)peek_record_count(prefix);
    if (!prefix.empty()) {
      // Patch the length field to claim the truncated size, so the body
      // parsers run over genuinely short set framing instead of stopping at
      // the header length check.
      if (prefix.size() >= 4) {
        prefix[2] = static_cast<std::uint8_t>(prefix.size() >> 8);
        prefix[3] = static_cast<std::uint8_t>(prefix.size());
      }
      (void)peek_record_count(prefix);
    }
  }
}

TEST(IpfixMutationSweep, DecoderSurvivesAndRollsBackOnEveryCorruption) {
  const auto msg = valid_message();
  // The reference decode this sweep compares against.
  std::vector<FlowRecord> reference;
  {
    IpfixDecoder dec;
    ASSERT_TRUE(dec.decode(msg, reference));
  }
  const std::uint8_t replacements[] = {0x00, 0xFF};
  std::uint64_t rejected = 0;
  for (std::size_t i = 0; i < msg.size(); ++i) {
    for (const std::uint8_t value : replacements) {
      auto mutated = msg;
      mutated[i] = value;
      // Fix the header length field back up when the mutation did not touch
      // it, so a healthy share of mutations reaches the body parsers.
      IpfixDecoder dec;
      std::vector<FlowRecord> out;
      out.push_back(sample_record(999));  // pre-existing output must survive
      const bool ok = dec.decode(mutated, out);
      if (!ok) {
        ++rejected;
        // Rollback contract: a malformed message contributes nothing.
        ASSERT_EQ(out.size(), 1u) << "offset=" << i;
        EXPECT_EQ(dec.stats().malformed_messages, 1u);
      }
    }
  }
  EXPECT_GT(rejected, 0u);  // the sweep does hit the malformed paths
}

TEST(IpfixMutationSweep, RandomGarbageNeverDecodes) {
  Rng rng(20260808);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t len = static_cast<std::size_t>(rng.next_below(257));
    std::vector<std::uint8_t> garbage(len);
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.next_below(256));
    (void)peek_header(garbage.data(), garbage.size());
    (void)peek_export_time(garbage);
    (void)peek_record_count(garbage);
    IpfixDecoder dec;
    std::vector<FlowRecord> out;
    (void)dec.decode(garbage, out);
  }
}

// The record-count peek and the decoder must agree on every valid message —
// the epoch scheduler cuts on the peek, the shards decode the records, and
// conservation requires the two counts to be the same number.
TEST(IpfixMutationSweep, PeekCountMatchesDecodeOnValidMessages) {
  for (std::size_t records = 0; records <= 40; records += 5) {
    IpfixEncoder enc(IpfixEncoderOptions{});
    std::vector<FlowRecord> batch;
    for (std::uint32_t i = 0; i < records; ++i) batch.push_back(sample_record(i));
    std::uint64_t peeked = 0, decoded = 0;
    IpfixDecoder dec;
    for (const auto& m : enc.encode(batch, 1)) {
      const auto count = peek_record_count(m);
      ASSERT_TRUE(count.has_value());
      peeked += *count;
      std::vector<FlowRecord> out;
      ASSERT_TRUE(dec.decode(m, out));
      decoded += out.size();
    }
    EXPECT_EQ(peeked, records);
    EXPECT_EQ(decoded, records);
  }
}

}  // namespace
}  // namespace flock
