// MUST NOT COMPILE under -Wthread-safety -Werror=thread-safety.
//
// The misuse: acquiring a non-reentrant mutex twice on one thread — with
// std::mutex this is undefined behavior that usually presents as a
// self-deadlock. The annotations catch it statically ("acquiring mutex ...
// that is already held").
#include <cstdint>

#include "common/mutex.h"

namespace {

class Counter {
 public:
  void add(std::uint64_t n) EXCLUDES(mutex_) {
    flock::MutexLock outer(mutex_);
    flock::MutexLock inner(mutex_);  // BUG: mutex_ is already held
    value_ += n;
  }

 private:
  mutable flock::Mutex mutex_;
  std::uint64_t value_ GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.add(1);
  return 0;
}
