// Positive control for the negative-compile harness: the canonical locking
// patterns this tree uses, all of which MUST compile cleanly under
// -Wthread-safety -Werror=thread-safety. If this snippet ever fails, the
// annotations have started rejecting correct code and every fail_* result
// in this directory is meaningless.
#include <cstdint>

#include "common/mutex.h"

namespace {

class Counter {
 public:
  // EXCLUDES: public methods take the lock themselves.
  void add(std::uint64_t n) EXCLUDES(mutex_) {
    flock::MutexLock lock(mutex_);
    add_locked(n);
  }

  std::uint64_t get() const EXCLUDES(mutex_) {
    flock::MutexLock lock(mutex_);
    return value_;
  }

  // The explicit-loop condition-variable wait (predicate lambdas are
  // invisible to the analysis; see common/mutex.h).
  void wait_nonzero() EXCLUDES(mutex_) {
    flock::MutexLock lock(mutex_);
    while (value_ == 0) cv_.wait(lock);
  }

  // The "notify outside the lock" manual-unlock pattern.
  void add_and_notify(std::uint64_t n) EXCLUDES(mutex_) {
    flock::MutexLock lock(mutex_);
    add_locked(n);
    lock.unlock();
    cv_.notify_all();
  }

 private:
  // REQUIRES: helper documented (and now machine-checked) hold-the-lock.
  void add_locked(std::uint64_t n) REQUIRES(mutex_) { value_ += n; }

  mutable flock::Mutex mutex_;
  flock::CondVar cv_;
  std::uint64_t value_ GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.add(1);
  c.add_and_notify(1);
  c.wait_nonzero();
  return static_cast<int>(c.get() - 2);
}
