// MUST NOT COMPILE under -Wthread-safety -Werror=thread-safety.
//
// The misuse: writing a GUARDED_BY field without holding its mutex — the
// exact bug class (a racy unguarded access) the annotation scheme exists to
// turn into a build break. The harness asserts clang rejects this with a
// thread-safety diagnostic ("writing variable ... requires holding mutex").
#include <cstdint>

#include "common/mutex.h"

namespace {

class Counter {
 public:
  void add(std::uint64_t n) {
    value_ += n;  // BUG: guarded field touched with mutex_ not held
  }

 private:
  mutable flock::Mutex mutex_;
  std::uint64_t value_ GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.add(1);
  return 0;
}
