// MUST NOT COMPILE under -Wthread-safety -Werror=thread-safety.
//
// The misuse: calling a REQUIRES(mutex_) helper without holding the lock —
// the "call with lock held" doc-comment contract, now machine-checked
// ("calling function ... requires holding mutex"). This is the misuse mode
// EXCLUDES/REQUIRES pairs exist for: the helper itself touches guarded
// state legally, so only the call-site check can catch the bug.
#include <cstdint>

#include "common/mutex.h"

namespace {

class Counter {
 public:
  void add(std::uint64_t n) {
    add_locked(n);  // BUG: REQUIRES(mutex_) helper called without the lock
  }

 private:
  void add_locked(std::uint64_t n) REQUIRES(mutex_) { value_ += n; }

  mutable flock::Mutex mutex_;
  std::uint64_t value_ GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.add(1);
  return 0;
}
