// Tests for the flow-level simulator: scenarios, traffic generation, drop
// statistics, and the telemetry views.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "common/rng.h"
#include "flowsim/scenario.h"
#include "flowsim/simulate.h"
#include "flowsim/views.h"
#include "topology/topology.h"

namespace flock {
namespace {

TEST(Scenario, HealthyHasBackgroundRatesOnly) {
  Topology topo = make_fat_tree(4);
  Rng rng(1);
  DropRateConfig rates;
  const GroundTruth truth = make_healthy(topo, rates, rng);
  EXPECT_TRUE(truth.failed.empty());
  ASSERT_EQ(static_cast<std::int32_t>(truth.link_drop_rate.size()), topo.num_links());
  for (double d : truth.link_drop_rate) {
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, rates.good_max);
  }
}

TEST(Scenario, SilentDropsMarkSwitchLinks) {
  Topology topo = make_fat_tree(4);
  Rng rng(2);
  DropRateConfig rates;
  const GroundTruth truth = make_silent_link_drops(topo, 5, rates, rng);
  EXPECT_EQ(truth.failed.size(), 5u);
  for (ComponentId c : truth.failed) {
    ASSERT_TRUE(topo.is_link_component(c));
    EXPECT_FALSE(topo.is_host_link(topo.component_link(c)));
    const double d = truth.link_drop_rate[static_cast<std::size_t>(topo.component_link(c))];
    EXPECT_GE(d, rates.bad_min);
    EXPECT_LE(d, rates.bad_max);
    EXPECT_TRUE(truth.is_failed(c));
  }
  EXPECT_TRUE(std::is_sorted(truth.failed.begin(), truth.failed.end()));
}

TEST(Scenario, FixedRateDrops) {
  Topology topo = make_fat_tree(4);
  Rng rng(3);
  const GroundTruth truth = make_silent_link_drops_fixed(topo, 1, 0.012, DropRateConfig{}, rng);
  ASSERT_EQ(truth.failed.size(), 1u);
  EXPECT_DOUBLE_EQ(
      truth.link_drop_rate[static_cast<std::size_t>(topo.component_link(truth.failed[0]))],
      0.012);
}

TEST(Scenario, DeviceFailureFailsRequestedFraction) {
  Topology topo = make_fat_tree(4);
  Rng rng(4);
  const GroundTruth truth = make_device_failures(topo, 2, 0.5, DropRateConfig{}, rng);
  EXPECT_EQ(truth.failed.size(), 2u);
  for (ComponentId dev : truth.failed) {
    ASSERT_TRUE(topo.is_device_component(dev));
    const auto it = truth.device_failed_links.find(dev);
    ASSERT_NE(it, truth.device_failed_links.end());
    const auto total = topo.device_links(topo.device_node(dev)).size();
    EXPECT_EQ(it->second.size(), (total + 1) / 2);  // 50%, rounded
  }
}

TEST(Scenario, RejectsTooManyFailures) {
  Topology topo = make_fat_tree(4);
  Rng rng(5);
  EXPECT_THROW(
      make_silent_link_drops(topo, topo.num_links() + 1, DropRateConfig{}, rng),
      std::invalid_argument);
  EXPECT_THROW(make_device_failures(topo, 1, 0.0, DropRateConfig{}, rng),
               std::invalid_argument);
}

TEST(Simulate, ProbeMeshCoversHostsTimesCores) {
  Topology topo = make_fat_tree(4);
  EcmpRouter router(topo);
  Rng rng(6);
  GroundTruth truth = make_healthy(topo, DropRateConfig{}, rng);
  TrafficConfig traffic;
  traffic.num_app_flows = 10;
  ProbeConfig probes;
  const Trace trace = simulate(topo, router, std::move(truth), traffic, probes, rng);
  std::int64_t probe_count = 0;
  for (const SimFlow& f : trace.flows) probe_count += (f.kind == SimFlowKind::kProbe) ? 1 : 0;
  // k=4 fat tree: 16 hosts x 4 cores x 1 path each.
  EXPECT_EQ(probe_count, 16 * 4);
}

TEST(Simulate, FlowsHaveValidPaths) {
  Topology topo = make_fat_tree(4);
  EcmpRouter router(topo);
  Rng rng(7);
  GroundTruth truth = make_healthy(topo, DropRateConfig{}, rng);
  TrafficConfig traffic;
  traffic.num_app_flows = 500;
  const Trace trace = simulate(topo, router, std::move(truth), traffic, ProbeConfig{}, rng);
  for (const SimFlow& f : trace.flows) {
    ASSERT_GE(f.taken_path, 0);
    ASSERT_LT(static_cast<std::size_t>(f.taken_path),
              router.path_set(f.path_set).paths.size());
    EXPECT_GE(f.packets_sent, 1u);
    EXPECT_LE(f.dropped, f.packets_sent);
    if (f.kind == SimFlowKind::kApp) {
      EXPECT_NE(f.src_host, f.dst_host);
      EXPECT_EQ(router.path_set(f.path_set).src_sw, topo.tor_of(f.src_host));
    }
  }
}

TEST(Simulate, DropRateMatchesGroundTruthStatistically) {
  Topology topo = make_fat_tree(4);
  EcmpRouter router(topo);
  Rng rng(8);
  GroundTruth truth = make_silent_link_drops_fixed(topo, 1, 0.02, DropRateConfig{0, 0, 0}, rng);
  const ComponentId bad = truth.failed.front();
  TrafficConfig traffic;
  traffic.num_app_flows = 4000;
  const Trace trace = simulate(topo, router, std::move(truth), traffic, ProbeConfig{}, rng);
  std::uint64_t through_sent = 0, through_dropped = 0;
  for (const SimFlow& f : trace.flows) {
    const PathSet& set = router.path_set(f.path_set);
    const Path& p = router.path(set.paths[static_cast<std::size_t>(f.taken_path)]);
    if (std::find(p.comps.begin(), p.comps.end(), bad) != p.comps.end()) {
      through_sent += f.packets_sent;
      through_dropped += f.dropped;
    }
  }
  ASSERT_GT(through_sent, 10000u);
  const double observed = static_cast<double>(through_dropped) / static_cast<double>(through_sent);
  EXPECT_NEAR(observed, 0.02, 0.004);
}

TEST(Simulate, SkewedTrafficConcentrates) {
  Topology topo = make_fat_tree(6);
  EcmpRouter router(topo);
  Rng rng(9);
  GroundTruth truth = make_healthy(topo, DropRateConfig{}, rng);
  TrafficConfig traffic;
  traffic.num_app_flows = 6000;
  traffic.skewed = true;
  const Trace trace = simulate(topo, router, std::move(truth), traffic, ProbeConfig{false, 0},
                               rng);
  // Count flows per source ToR; the hottest 1-2 racks should hold far more
  // than the uniform share.
  std::map<NodeId, std::int64_t> per_tor;
  for (const SimFlow& f : trace.flows) per_tor[topo.tor_of(f.src_host)]++;
  std::vector<std::int64_t> counts;
  for (auto& [tor, n] : per_tor) counts.push_back(n);
  std::sort(counts.rbegin(), counts.rend());
  const double uniform_share = 6000.0 / 18.0;  // 18 ToRs in k=6
  EXPECT_GT(static_cast<double>(counts.front()), 3.0 * uniform_share);
}

TEST(Simulate, ParetoSizesHaveHeavyTail) {
  Topology topo = make_fat_tree(4);
  EcmpRouter router(topo);
  Rng rng(10);
  GroundTruth truth = make_healthy(topo, DropRateConfig{}, rng);
  TrafficConfig traffic;
  traffic.num_app_flows = 20000;
  const Trace trace = simulate(topo, router, std::move(truth), traffic, ProbeConfig{false, 0},
                               rng);
  std::vector<std::uint32_t> sizes;
  for (const SimFlow& f : trace.flows) sizes.push_back(f.packets_sent);
  std::sort(sizes.begin(), sizes.end());
  const auto median = sizes[sizes.size() / 2];
  const auto p99 = sizes[static_cast<std::size_t>(0.99 * static_cast<double>(sizes.size()))];
  EXPECT_GT(p99, 10 * median);  // heavy tailed
  EXPECT_GE(sizes.front(), 1u);
}

// --- views ---------------------------------------------------------------------

struct ViewFixture {
  Topology topo = make_fat_tree(4);
  EcmpRouter router{topo};
  Trace trace;

  ViewFixture() {
    Rng rng(11);
    GroundTruth truth = make_silent_link_drops(topo, 2, DropRateConfig{1e-4, 5e-3, 1e-2}, rng);
    TrafficConfig traffic;
    traffic.num_app_flows = 3000;
    trace = simulate(topo, router, std::move(truth), traffic, ProbeConfig{}, rng);
  }
};

TEST(Views, A1KeepsOnlyProbesWithPaths) {
  ViewFixture fx;
  ViewOptions v;
  v.telemetry = kTelemetryA1;
  const auto input = make_view(fx.topo, fx.router, fx.trace, v);
  std::size_t probes = 0;
  for (const SimFlow& f : fx.trace.flows) probes += (f.kind == SimFlowKind::kProbe) ? 1 : 0;
  EXPECT_EQ(input.num_flows(), probes);
  for (const auto& obs : input.expanded_flows()) EXPECT_TRUE(obs.path_known());
}

TEST(Views, A2KeepsOnlyFlaggedAppFlows) {
  ViewFixture fx;
  ViewOptions v;
  v.telemetry = kTelemetryA2;
  const auto input = make_view(fx.topo, fx.router, fx.trace, v);
  std::size_t flagged = 0;
  for (const SimFlow& f : fx.trace.flows) {
    flagged += (f.kind == SimFlowKind::kApp && f.dropped >= 1) ? 1 : 0;
  }
  EXPECT_EQ(input.num_flows(), flagged);
  for (const auto& obs : input.expanded_flows()) {
    EXPECT_TRUE(obs.path_known());
    EXPECT_GE(obs.bad_packets, 1u);
  }
}

TEST(Views, PHidesPaths) {
  ViewFixture fx;
  ViewOptions v;
  v.telemetry = kTelemetryP;
  const auto input = make_view(fx.topo, fx.router, fx.trace, v);
  std::size_t apps = 0;
  for (const SimFlow& f : fx.trace.flows) apps += (f.kind == SimFlowKind::kApp) ? 1 : 0;
  EXPECT_EQ(input.num_flows(), apps);
  for (const auto& obs : input.expanded_flows()) EXPECT_FALSE(obs.path_known());
}

TEST(Views, A2PlusPDoesNotDuplicate) {
  ViewFixture fx;
  ViewOptions v;
  v.telemetry = kTelemetryA2 | kTelemetryP;
  const auto input = make_view(fx.topo, fx.router, fx.trace, v);
  std::size_t apps = 0;
  for (const SimFlow& f : fx.trace.flows) apps += (f.kind == SimFlowKind::kApp) ? 1 : 0;
  EXPECT_EQ(input.num_flows(), apps);  // every app flow exactly once
  std::size_t known = 0;
  for (const auto& obs : input.expanded_flows()) known += obs.path_known() ? 1 : 0;
  std::size_t flagged = 0;
  for (const SimFlow& f : fx.trace.flows) {
    flagged += (f.kind == SimFlowKind::kApp && f.dropped >= 1) ? 1 : 0;
  }
  EXPECT_EQ(known, flagged);
}

TEST(Views, IntRevealsEverything) {
  ViewFixture fx;
  ViewOptions v;
  v.telemetry = kTelemetryInt;
  const auto input = make_view(fx.topo, fx.router, fx.trace, v);
  EXPECT_EQ(input.num_flows(), fx.trace.flows.size());
  for (const auto& obs : input.expanded_flows()) EXPECT_TRUE(obs.path_known());
}

TEST(Views, PassiveSamplingReducesVolume) {
  ViewFixture fx;
  ViewOptions v;
  v.telemetry = kTelemetryP;
  v.passive_sample_rate = 0.25;
  const auto input = make_view(fx.topo, fx.router, fx.trace, v);
  std::size_t apps = 0;
  for (const SimFlow& f : fx.trace.flows) apps += (f.kind == SimFlowKind::kApp) ? 1 : 0;
  EXPECT_LT(input.num_flows(), apps / 2);
  EXPECT_GT(input.num_flows(), apps / 8);
}

TEST(Views, PerFlowLatencyConvertsMetrics) {
  ViewFixture fx;
  for (SimFlow& f : fx.trace.flows) f.rtt_ms = 20.0f;  // all above threshold
  ViewOptions v;
  v.telemetry = kTelemetryInt;
  v.per_flow_latency = true;
  v.rtt_threshold_ms = 10.0;
  const auto input = make_view(fx.topo, fx.router, fx.trace, v);
  for (const auto& obs : input.expanded_flows()) {
    EXPECT_EQ(obs.packets_sent, 1u);
    EXPECT_EQ(obs.bad_packets, 1u);
  }
}

TEST(Views, TelemetryLabels) {
  EXPECT_EQ(telemetry_label(kTelemetryA1), "A1");
  EXPECT_EQ(telemetry_label(kTelemetryA1 | kTelemetryA2 | kTelemetryP), "A1+A2+P");
  EXPECT_EQ(telemetry_label(kTelemetryInt), "INT");
  EXPECT_EQ(telemetry_label(kTelemetryInt | kTelemetryA1), "INT");
  EXPECT_EQ(telemetry_label(0), "none");
}

TEST(Views, WidthMatchesPathSet) {
  ViewFixture fx;
  ViewOptions v;
  v.telemetry = kTelemetryP;
  const auto input = make_view(fx.topo, fx.router, fx.trace, v);
  const auto obs = input.expanded_flows().front();
  EXPECT_EQ(input.width(obs),
            static_cast<std::int32_t>(fx.router.path_set(obs.path_set).paths.size()));
}

}  // namespace
}  // namespace flock
